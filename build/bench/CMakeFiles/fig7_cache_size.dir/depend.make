# Empty dependencies file for fig7_cache_size.
# This may be replaced when dependencies are built.
