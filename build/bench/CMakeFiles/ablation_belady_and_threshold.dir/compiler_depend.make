# Empty compiler generated dependencies file for ablation_belady_and_threshold.
# This may be replaced when dependencies are built.
