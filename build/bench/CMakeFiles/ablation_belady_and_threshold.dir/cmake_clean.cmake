file(REMOVE_RECURSE
  "CMakeFiles/ablation_belady_and_threshold.dir/ablation_belady_and_threshold.cpp.o"
  "CMakeFiles/ablation_belady_and_threshold.dir/ablation_belady_and_threshold.cpp.o.d"
  "ablation_belady_and_threshold"
  "ablation_belady_and_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_belady_and_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
