# Empty compiler generated dependencies file for mrd_dag.
# This may be replaced when dependencies are built.
