file(REMOVE_RECURSE
  "libmrd_dag.a"
)
