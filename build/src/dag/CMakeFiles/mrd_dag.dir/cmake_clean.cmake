file(REMOVE_RECURSE
  "CMakeFiles/mrd_dag.dir/application.cpp.o"
  "CMakeFiles/mrd_dag.dir/application.cpp.o.d"
  "CMakeFiles/mrd_dag.dir/dag_analysis.cpp.o"
  "CMakeFiles/mrd_dag.dir/dag_analysis.cpp.o.d"
  "CMakeFiles/mrd_dag.dir/dag_builder.cpp.o"
  "CMakeFiles/mrd_dag.dir/dag_builder.cpp.o.d"
  "CMakeFiles/mrd_dag.dir/dag_scheduler.cpp.o"
  "CMakeFiles/mrd_dag.dir/dag_scheduler.cpp.o.d"
  "CMakeFiles/mrd_dag.dir/execution_plan.cpp.o"
  "CMakeFiles/mrd_dag.dir/execution_plan.cpp.o.d"
  "CMakeFiles/mrd_dag.dir/reference_profile.cpp.o"
  "CMakeFiles/mrd_dag.dir/reference_profile.cpp.o.d"
  "CMakeFiles/mrd_dag.dir/transform.cpp.o"
  "CMakeFiles/mrd_dag.dir/transform.cpp.o.d"
  "libmrd_dag.a"
  "libmrd_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrd_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
