
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/application.cpp" "src/dag/CMakeFiles/mrd_dag.dir/application.cpp.o" "gcc" "src/dag/CMakeFiles/mrd_dag.dir/application.cpp.o.d"
  "/root/repo/src/dag/dag_analysis.cpp" "src/dag/CMakeFiles/mrd_dag.dir/dag_analysis.cpp.o" "gcc" "src/dag/CMakeFiles/mrd_dag.dir/dag_analysis.cpp.o.d"
  "/root/repo/src/dag/dag_builder.cpp" "src/dag/CMakeFiles/mrd_dag.dir/dag_builder.cpp.o" "gcc" "src/dag/CMakeFiles/mrd_dag.dir/dag_builder.cpp.o.d"
  "/root/repo/src/dag/dag_scheduler.cpp" "src/dag/CMakeFiles/mrd_dag.dir/dag_scheduler.cpp.o" "gcc" "src/dag/CMakeFiles/mrd_dag.dir/dag_scheduler.cpp.o.d"
  "/root/repo/src/dag/execution_plan.cpp" "src/dag/CMakeFiles/mrd_dag.dir/execution_plan.cpp.o" "gcc" "src/dag/CMakeFiles/mrd_dag.dir/execution_plan.cpp.o.d"
  "/root/repo/src/dag/reference_profile.cpp" "src/dag/CMakeFiles/mrd_dag.dir/reference_profile.cpp.o" "gcc" "src/dag/CMakeFiles/mrd_dag.dir/reference_profile.cpp.o.d"
  "/root/repo/src/dag/transform.cpp" "src/dag/CMakeFiles/mrd_dag.dir/transform.cpp.o" "gcc" "src/dag/CMakeFiles/mrd_dag.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mrd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
