# Empty compiler generated dependencies file for mrd_sim.
# This may be replaced when dependencies are built.
