file(REMOVE_RECURSE
  "libmrd_sim.a"
)
