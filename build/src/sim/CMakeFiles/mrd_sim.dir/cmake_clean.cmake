file(REMOVE_RECURSE
  "CMakeFiles/mrd_sim.dir/node_accounting.cpp.o"
  "CMakeFiles/mrd_sim.dir/node_accounting.cpp.o.d"
  "libmrd_sim.a"
  "libmrd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
