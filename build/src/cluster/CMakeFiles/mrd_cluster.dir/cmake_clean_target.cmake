file(REMOVE_RECURSE
  "libmrd_cluster.a"
)
