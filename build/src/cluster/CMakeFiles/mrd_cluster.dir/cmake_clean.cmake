file(REMOVE_RECURSE
  "CMakeFiles/mrd_cluster.dir/block_manager.cpp.o"
  "CMakeFiles/mrd_cluster.dir/block_manager.cpp.o.d"
  "CMakeFiles/mrd_cluster.dir/block_manager_master.cpp.o"
  "CMakeFiles/mrd_cluster.dir/block_manager_master.cpp.o.d"
  "CMakeFiles/mrd_cluster.dir/cluster_config.cpp.o"
  "CMakeFiles/mrd_cluster.dir/cluster_config.cpp.o.d"
  "CMakeFiles/mrd_cluster.dir/memory_store.cpp.o"
  "CMakeFiles/mrd_cluster.dir/memory_store.cpp.o.d"
  "libmrd_cluster.a"
  "libmrd_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrd_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
