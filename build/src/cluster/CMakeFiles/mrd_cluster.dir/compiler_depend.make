# Empty compiler generated dependencies file for mrd_cluster.
# This may be replaced when dependencies are built.
