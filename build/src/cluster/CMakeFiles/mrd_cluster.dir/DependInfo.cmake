
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/block_manager.cpp" "src/cluster/CMakeFiles/mrd_cluster.dir/block_manager.cpp.o" "gcc" "src/cluster/CMakeFiles/mrd_cluster.dir/block_manager.cpp.o.d"
  "/root/repo/src/cluster/block_manager_master.cpp" "src/cluster/CMakeFiles/mrd_cluster.dir/block_manager_master.cpp.o" "gcc" "src/cluster/CMakeFiles/mrd_cluster.dir/block_manager_master.cpp.o.d"
  "/root/repo/src/cluster/cluster_config.cpp" "src/cluster/CMakeFiles/mrd_cluster.dir/cluster_config.cpp.o" "gcc" "src/cluster/CMakeFiles/mrd_cluster.dir/cluster_config.cpp.o.d"
  "/root/repo/src/cluster/memory_store.cpp" "src/cluster/CMakeFiles/mrd_cluster.dir/memory_store.cpp.o" "gcc" "src/cluster/CMakeFiles/mrd_cluster.dir/memory_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/mrd_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/mrd_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
