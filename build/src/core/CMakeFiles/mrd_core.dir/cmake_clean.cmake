file(REMOVE_RECURSE
  "CMakeFiles/mrd_core.dir/app_profiler.cpp.o"
  "CMakeFiles/mrd_core.dir/app_profiler.cpp.o.d"
  "CMakeFiles/mrd_core.dir/cache_monitor.cpp.o"
  "CMakeFiles/mrd_core.dir/cache_monitor.cpp.o.d"
  "CMakeFiles/mrd_core.dir/mrd_manager.cpp.o"
  "CMakeFiles/mrd_core.dir/mrd_manager.cpp.o.d"
  "CMakeFiles/mrd_core.dir/policy_registry.cpp.o"
  "CMakeFiles/mrd_core.dir/policy_registry.cpp.o.d"
  "CMakeFiles/mrd_core.dir/profile_store.cpp.o"
  "CMakeFiles/mrd_core.dir/profile_store.cpp.o.d"
  "CMakeFiles/mrd_core.dir/ref_distance_table.cpp.o"
  "CMakeFiles/mrd_core.dir/ref_distance_table.cpp.o.d"
  "libmrd_core.a"
  "libmrd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
