
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/app_profiler.cpp" "src/core/CMakeFiles/mrd_core.dir/app_profiler.cpp.o" "gcc" "src/core/CMakeFiles/mrd_core.dir/app_profiler.cpp.o.d"
  "/root/repo/src/core/cache_monitor.cpp" "src/core/CMakeFiles/mrd_core.dir/cache_monitor.cpp.o" "gcc" "src/core/CMakeFiles/mrd_core.dir/cache_monitor.cpp.o.d"
  "/root/repo/src/core/mrd_manager.cpp" "src/core/CMakeFiles/mrd_core.dir/mrd_manager.cpp.o" "gcc" "src/core/CMakeFiles/mrd_core.dir/mrd_manager.cpp.o.d"
  "/root/repo/src/core/policy_registry.cpp" "src/core/CMakeFiles/mrd_core.dir/policy_registry.cpp.o" "gcc" "src/core/CMakeFiles/mrd_core.dir/policy_registry.cpp.o.d"
  "/root/repo/src/core/profile_store.cpp" "src/core/CMakeFiles/mrd_core.dir/profile_store.cpp.o" "gcc" "src/core/CMakeFiles/mrd_core.dir/profile_store.cpp.o.d"
  "/root/repo/src/core/ref_distance_table.cpp" "src/core/CMakeFiles/mrd_core.dir/ref_distance_table.cpp.o" "gcc" "src/core/CMakeFiles/mrd_core.dir/ref_distance_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/mrd_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/mrd_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
