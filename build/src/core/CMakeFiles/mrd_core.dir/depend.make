# Empty dependencies file for mrd_core.
# This may be replaced when dependencies are built.
