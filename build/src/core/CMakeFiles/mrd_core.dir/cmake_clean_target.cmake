file(REMOVE_RECURSE
  "libmrd_core.a"
)
