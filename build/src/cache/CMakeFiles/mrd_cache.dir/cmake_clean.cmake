file(REMOVE_RECURSE
  "CMakeFiles/mrd_cache.dir/belady.cpp.o"
  "CMakeFiles/mrd_cache.dir/belady.cpp.o.d"
  "CMakeFiles/mrd_cache.dir/cache_policy.cpp.o"
  "CMakeFiles/mrd_cache.dir/cache_policy.cpp.o.d"
  "CMakeFiles/mrd_cache.dir/fifo.cpp.o"
  "CMakeFiles/mrd_cache.dir/fifo.cpp.o.d"
  "CMakeFiles/mrd_cache.dir/lrc.cpp.o"
  "CMakeFiles/mrd_cache.dir/lrc.cpp.o.d"
  "CMakeFiles/mrd_cache.dir/lru.cpp.o"
  "CMakeFiles/mrd_cache.dir/lru.cpp.o.d"
  "CMakeFiles/mrd_cache.dir/memtune.cpp.o"
  "CMakeFiles/mrd_cache.dir/memtune.cpp.o.d"
  "libmrd_cache.a"
  "libmrd_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrd_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
