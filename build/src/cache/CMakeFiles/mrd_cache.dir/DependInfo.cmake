
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/belady.cpp" "src/cache/CMakeFiles/mrd_cache.dir/belady.cpp.o" "gcc" "src/cache/CMakeFiles/mrd_cache.dir/belady.cpp.o.d"
  "/root/repo/src/cache/cache_policy.cpp" "src/cache/CMakeFiles/mrd_cache.dir/cache_policy.cpp.o" "gcc" "src/cache/CMakeFiles/mrd_cache.dir/cache_policy.cpp.o.d"
  "/root/repo/src/cache/fifo.cpp" "src/cache/CMakeFiles/mrd_cache.dir/fifo.cpp.o" "gcc" "src/cache/CMakeFiles/mrd_cache.dir/fifo.cpp.o.d"
  "/root/repo/src/cache/lrc.cpp" "src/cache/CMakeFiles/mrd_cache.dir/lrc.cpp.o" "gcc" "src/cache/CMakeFiles/mrd_cache.dir/lrc.cpp.o.d"
  "/root/repo/src/cache/lru.cpp" "src/cache/CMakeFiles/mrd_cache.dir/lru.cpp.o" "gcc" "src/cache/CMakeFiles/mrd_cache.dir/lru.cpp.o.d"
  "/root/repo/src/cache/memtune.cpp" "src/cache/CMakeFiles/mrd_cache.dir/memtune.cpp.o" "gcc" "src/cache/CMakeFiles/mrd_cache.dir/memtune.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dag/CMakeFiles/mrd_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
