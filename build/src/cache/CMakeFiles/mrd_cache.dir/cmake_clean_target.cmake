file(REMOVE_RECURSE
  "libmrd_cache.a"
)
