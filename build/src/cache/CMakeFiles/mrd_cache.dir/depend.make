# Empty dependencies file for mrd_cache.
# This may be replaced when dependencies are built.
