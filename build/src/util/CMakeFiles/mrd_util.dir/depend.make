# Empty dependencies file for mrd_util.
# This may be replaced when dependencies are built.
