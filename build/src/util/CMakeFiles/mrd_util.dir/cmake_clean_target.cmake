file(REMOVE_RECURSE
  "libmrd_util.a"
)
