file(REMOVE_RECURSE
  "CMakeFiles/mrd_util.dir/csv.cpp.o"
  "CMakeFiles/mrd_util.dir/csv.cpp.o.d"
  "CMakeFiles/mrd_util.dir/format.cpp.o"
  "CMakeFiles/mrd_util.dir/format.cpp.o.d"
  "CMakeFiles/mrd_util.dir/logging.cpp.o"
  "CMakeFiles/mrd_util.dir/logging.cpp.o.d"
  "CMakeFiles/mrd_util.dir/math.cpp.o"
  "CMakeFiles/mrd_util.dir/math.cpp.o.d"
  "CMakeFiles/mrd_util.dir/table.cpp.o"
  "CMakeFiles/mrd_util.dir/table.cpp.o.d"
  "libmrd_util.a"
  "libmrd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
