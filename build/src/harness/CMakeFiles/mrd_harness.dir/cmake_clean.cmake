file(REMOVE_RECURSE
  "CMakeFiles/mrd_harness.dir/experiment.cpp.o"
  "CMakeFiles/mrd_harness.dir/experiment.cpp.o.d"
  "libmrd_harness.a"
  "libmrd_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrd_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
