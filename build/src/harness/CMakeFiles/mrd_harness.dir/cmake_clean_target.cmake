file(REMOVE_RECURSE
  "libmrd_harness.a"
)
