# Empty compiler generated dependencies file for mrd_harness.
# This may be replaced when dependencies are built.
