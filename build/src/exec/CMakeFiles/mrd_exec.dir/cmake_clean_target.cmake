file(REMOVE_RECURSE
  "libmrd_exec.a"
)
