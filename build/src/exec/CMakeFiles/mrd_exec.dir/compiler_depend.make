# Empty compiler generated dependencies file for mrd_exec.
# This may be replaced when dependencies are built.
