file(REMOVE_RECURSE
  "CMakeFiles/mrd_exec.dir/application_runner.cpp.o"
  "CMakeFiles/mrd_exec.dir/application_runner.cpp.o.d"
  "CMakeFiles/mrd_exec.dir/lineage_resolver.cpp.o"
  "CMakeFiles/mrd_exec.dir/lineage_resolver.cpp.o.d"
  "libmrd_exec.a"
  "libmrd_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrd_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
