file(REMOVE_RECURSE
  "CMakeFiles/mrd_workloads.dir/hibench.cpp.o"
  "CMakeFiles/mrd_workloads.dir/hibench.cpp.o.d"
  "CMakeFiles/mrd_workloads.dir/registry.cpp.o"
  "CMakeFiles/mrd_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/mrd_workloads.dir/sparkbench_graph.cpp.o"
  "CMakeFiles/mrd_workloads.dir/sparkbench_graph.cpp.o.d"
  "CMakeFiles/mrd_workloads.dir/sparkbench_ml.cpp.o"
  "CMakeFiles/mrd_workloads.dir/sparkbench_ml.cpp.o.d"
  "libmrd_workloads.a"
  "libmrd_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrd_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
