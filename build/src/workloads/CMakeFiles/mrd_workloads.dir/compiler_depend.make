# Empty compiler generated dependencies file for mrd_workloads.
# This may be replaced when dependencies are built.
