
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/hibench.cpp" "src/workloads/CMakeFiles/mrd_workloads.dir/hibench.cpp.o" "gcc" "src/workloads/CMakeFiles/mrd_workloads.dir/hibench.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/mrd_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/mrd_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/sparkbench_graph.cpp" "src/workloads/CMakeFiles/mrd_workloads.dir/sparkbench_graph.cpp.o" "gcc" "src/workloads/CMakeFiles/mrd_workloads.dir/sparkbench_graph.cpp.o.d"
  "/root/repo/src/workloads/sparkbench_ml.cpp" "src/workloads/CMakeFiles/mrd_workloads.dir/sparkbench_ml.cpp.o" "gcc" "src/workloads/CMakeFiles/mrd_workloads.dir/sparkbench_ml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/mrd_api.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/mrd_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
