file(REMOVE_RECURSE
  "libmrd_workloads.a"
)
