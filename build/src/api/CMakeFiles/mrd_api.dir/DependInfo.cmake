
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/dataset.cpp" "src/api/CMakeFiles/mrd_api.dir/dataset.cpp.o" "gcc" "src/api/CMakeFiles/mrd_api.dir/dataset.cpp.o.d"
  "/root/repo/src/api/pregel.cpp" "src/api/CMakeFiles/mrd_api.dir/pregel.cpp.o" "gcc" "src/api/CMakeFiles/mrd_api.dir/pregel.cpp.o.d"
  "/root/repo/src/api/spark_context.cpp" "src/api/CMakeFiles/mrd_api.dir/spark_context.cpp.o" "gcc" "src/api/CMakeFiles/mrd_api.dir/spark_context.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dag/CMakeFiles/mrd_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
