file(REMOVE_RECURSE
  "CMakeFiles/mrd_api.dir/dataset.cpp.o"
  "CMakeFiles/mrd_api.dir/dataset.cpp.o.d"
  "CMakeFiles/mrd_api.dir/pregel.cpp.o"
  "CMakeFiles/mrd_api.dir/pregel.cpp.o.d"
  "CMakeFiles/mrd_api.dir/spark_context.cpp.o"
  "CMakeFiles/mrd_api.dir/spark_context.cpp.o.d"
  "libmrd_api.a"
  "libmrd_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrd_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
