# Empty dependencies file for mrd_api.
# This may be replaced when dependencies are built.
