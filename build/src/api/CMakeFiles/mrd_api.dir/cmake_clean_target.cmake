file(REMOVE_RECURSE
  "libmrd_api.a"
)
