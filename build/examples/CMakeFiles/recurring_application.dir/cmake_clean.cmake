file(REMOVE_RECURSE
  "CMakeFiles/recurring_application.dir/recurring_application.cpp.o"
  "CMakeFiles/recurring_application.dir/recurring_application.cpp.o.d"
  "recurring_application"
  "recurring_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recurring_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
