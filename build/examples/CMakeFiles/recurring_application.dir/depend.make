# Empty dependencies file for recurring_application.
# This may be replaced when dependencies are built.
