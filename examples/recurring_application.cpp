// Demonstrates the paper's recurring-application story end to end:
//
//   run 1 (ad-hoc)    — MRD sees each job's DAG fragment as it is submitted;
//                       references in future jobs look infinitely far. The
//                       AppProfiler records the whole-application profile.
//   run 2 (recurring) — the ProfileStore recognizes the application; MRD
//                       starts with the complete reference-distance table.
//
//   $ ./recurring_application
#include <iostream>

#include "harness/experiment.h"
#include "util/format.h"
#include "util/table.h"

int main() {
  using namespace mrd;

  const WorkloadSpec* spec = find_workload("km");  // 17 jobs, high refs/RDD
  const WorkloadRun run = plan_workload(*spec);
  const ClusterConfig cluster = main_cluster();
  const double fraction = 0.6;

  ProfileStore store;  // the cluster-wide profile database
  PolicyConfig mrd;
  mrd.name = "mrd";
  mrd.profile_store = &store;

  std::cout << "Application: " << run.name << " — " << run.plan.jobs().size()
            << " jobs\n\n";

  AsciiTable table({"run", "mode", "JCT (s)", "hit ratio", "recomputes"});

  // Run 1: first submission, ad-hoc profiling.
  const RunMetrics first =
      run_with_policy(run, cluster, fraction, mrd, DagVisibility::kAdHoc);
  table.add_row({"1", "ad-hoc (profiling)",
                 format_double(first.jct_ms / 1000.0, 2),
                 format_percent(first.hit_ratio(), 1),
                 std::to_string(first.misses_recompute)});

  std::cout << "After run 1 the store holds "
            << (store.has_profile(run.name) ? "a profile" : "nothing")
            << " for this application (runs="
            << store.lookup(run.name)->runs << ").\n";

  // Run 2: recognized as recurring; the stored profile is replayed.
  const RunMetrics second =
      run_with_policy(run, cluster, fraction, mrd, DagVisibility::kRecurring);
  table.add_row({"2", "recurring (profiled)",
                 format_double(second.jct_ms / 1000.0, 2),
                 format_percent(second.hit_ratio(), 1),
                 std::to_string(second.misses_recompute)});

  // LRU reference point.
  PolicyConfig lru;
  lru.name = "lru";
  const RunMetrics base = run_with_policy(run, cluster, fraction, lru);
  table.add_row({"-", "LRU baseline", format_double(base.jct_ms / 1000.0, 2),
                 format_percent(base.hit_ratio(), 1),
                 std::to_string(base.misses_recompute)});

  table.print(std::cout);
  std::cout << "\nThe recurring run should beat the ad-hoc run (whole-DAG "
               "visibility), and both should beat LRU.\nStore state: runs="
            << store.lookup(run.name)->runs
            << " discrepancies=" << store.lookup(run.name)->discrepancies
            << "\n";
  return 0;
}
