// Compares every registered cache policy on one of the paper's benchmark
// workloads, across a sweep of cache sizes — the experiment you would run to
// decide whether MRD helps *your* application.
//
//   $ ./policy_comparison            # defaults to PageRank
//   $ ./policy_comparison scc 0.25 0.5 1.0
#include <cstdlib>
#include <iostream>

#include "harness/experiment.h"
#include "util/format.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mrd;

  const char* key = argc > 1 ? argv[1] : "pr";
  const WorkloadSpec* spec = find_workload(key);
  if (spec == nullptr) {
    std::cerr << "unknown workload '" << key << "'. Available:";
    for (const WorkloadSpec& s : sparkbench_workloads()) {
      std::cerr << " " << s.key;
    }
    for (const WorkloadSpec& s : hibench_workloads()) {
      std::cerr << " " << s.key;
    }
    std::cerr << "\n";
    return 1;
  }

  std::vector<double> fractions;
  for (int i = 2; i < argc; ++i) fractions.push_back(std::atof(argv[i]));
  if (fractions.empty()) fractions = default_cache_fractions();

  const WorkloadRun run = plan_workload(*spec);
  const ClusterConfig cluster = main_cluster();
  std::cout << "Workload: " << run.name << "  (" << run.plan.jobs().size()
            << " jobs, " << run.plan.active_stages() << " active stages, "
            << human_bytes(persisted_bytes(*run.app))
            << " persisted)\nCluster: " << cluster.num_nodes
            << " nodes; cache sized as a fraction of the peak live working "
               "set.\n\n";

  for (double fraction : fractions) {
    ClusterConfig sized = cluster;
    sized.cache_bytes_per_node = cache_bytes_per_node_for(run, cluster, fraction);
    std::cout << "Cache fraction " << format_double(fraction, 2) << " ("
              << human_bytes(sized.cache_bytes_per_node) << "/node):\n";
    AsciiTable table({"policy", "JCT (s)", "vs LRU", "hit ratio", "evictions",
                      "purged", "prefetch useful/wasted"});
    double lru_jct = 0.0;
    for (const std::string& policy :
         {"lru", "fifo", "lrc", "memtune", "mrd-evict", "mrd-prefetch", "mrd",
          "belady"}) {
      PolicyConfig pc;
      pc.name = policy;
      const RunMetrics m = run_with_policy(run, cluster, fraction, pc);
      if (policy == "lru") lru_jct = m.jct_ms;
      table.add_row(
          {policy, format_double(m.jct_ms / 1000.0, 2),
           format_percent(m.jct_ms / lru_jct, 0),
           format_percent(m.hit_ratio(), 1), std::to_string(m.evictions),
           std::to_string(m.purged_blocks),
           std::to_string(m.prefetches_useful) + "/" +
               std::to_string(m.prefetches_wasted)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
