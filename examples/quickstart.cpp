// Quickstart: build a small iterative application with the Dataset API, run
// it under LRU, LRC and MRD on the simulated cluster, and compare JCT and
// cache hit ratio.
//
//   $ ./quickstart
#include <iostream>

#include "api/pregel.h"
#include "api/spark_context.h"
#include "dag/dag_analysis.h"
#include "dag/dag_scheduler.h"
#include "exec/application_runner.h"
#include "util/format.h"
#include "util/table.h"

int main() {
  using namespace mrd;

  // --- 1. Write a Spark-style driver program. -----------------------------
  SparkContext sc("quickstart-pagerank");
  auto links = sc.text_file("edges", /*partitions=*/40,
                            /*bytes_per_partition=*/2 << 20)
                   .map("adjacency")
                   .cache();
  auto ranks = links.map_values("initRanks");
  for (int i = 0; i < 6; ++i) {
    const std::string tag = "#" + std::to_string(i);
    auto contribs = links.join(ranks, "contribs" + tag);
    ranks = contribs.reduce_by_key("ranks" + tag).cache();
    ranks.count("convergence" + tag);  // one job per iteration
  }
  auto app = std::move(sc).build_shared();

  // --- 2. Inspect the DAG the scheduler derives. ---------------------------
  const ExecutionPlan plan = DagScheduler::plan(app);
  const WorkloadCharacteristics chars = workload_characteristics(plan);
  const ReferenceDistanceStats dist = reference_distance_stats(plan);
  std::cout << "Application: " << app->name() << "\n"
            << "  jobs=" << chars.jobs << " stages=" << chars.stages
            << " active=" << chars.active_stages << " rdds=" << chars.rdds
            << "\n"
            << "  avg stage distance=" << format_double(dist.avg_stage_distance, 2)
            << " max=" << dist.max_stage_distance << "\n\n";

  // --- 3. Run under three cache policies, same undersized cache. ----------
  ClusterConfig cluster = main_cluster();
  cluster.num_nodes = 8;
  cluster.cache_bytes_per_node = 16 << 20;  // tight but workable

  AsciiTable table({"policy", "JCT (s)", "vs LRU", "hit ratio", "evictions",
                    "prefetch hits"});
  double lru_jct = 0.0;
  for (const char* policy : {"lru", "lrc", "mrd"}) {
    RunConfig config;
    config.cluster = cluster;
    config.policy.name = policy;
    const RunMetrics m = run_plan(plan, config);
    if (std::string(policy) == "lru") lru_jct = m.jct_ms;
    table.add_row({std::string(policy),
                   format_double(m.jct_ms / 1000.0, 2),
                   format_percent(m.jct_ms / lru_jct, 1),
                   format_percent(m.hit_ratio(), 1),
                   std::to_string(m.evictions),
                   std::to_string(m.prefetches_useful)});
  }
  table.print(std::cout);
  std::cout << "\nLower 'vs LRU' is better; MRD should lead on both JCT and "
               "hit ratio.\n";
  return 0;
}
