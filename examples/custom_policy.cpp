// Shows how to plug a user-defined cache policy into the simulator: a
// "second-chance" clock-style policy implemented against the CachePolicy
// interface, run head-to-head with the built-ins on a Pregel workload.
//
//   $ ./custom_policy
#include <iostream>
#include <list>
#include <unordered_map>

#include "cache/cache_policy.h"
#include "cluster/block_manager_master.h"
#include "exec/application_runner.h"
#include "harness/experiment.h"
#include "util/format.h"
#include "util/table.h"

namespace {

using namespace mrd;

/// CLOCK (second chance): a referenced bit per block; the hand skips blocks
/// that were touched since the last sweep.
class ClockPolicy : public CachePolicy {
 public:
  std::string_view name() const override { return "CLOCK"; }

  void on_block_cached(const BlockId& block, std::uint64_t) override {
    if (entries_.count(block)) return;
    ring_.push_back(block);
    entries_[block] = {std::prev(ring_.end()), /*referenced=*/false};
  }

  void on_block_accessed(const BlockId& block) override {
    const auto it = entries_.find(block);
    if (it != entries_.end()) it->second.referenced = true;
  }

  void on_block_evicted(const BlockId& block) override {
    const auto it = entries_.find(block);
    if (it == entries_.end()) return;
    if (hand_ == it->second.pos) ++hand_;
    ring_.erase(it->second.pos);
    entries_.erase(it);
  }

  std::optional<BlockId> choose_victim() override {
    if (ring_.empty()) return std::nullopt;
    for (std::size_t sweep = 0; sweep <= 2 * ring_.size(); ++sweep) {
      if (hand_ == ring_.end()) hand_ = ring_.begin();
      Entry& entry = entries_.at(*hand_);
      if (!entry.referenced) return *hand_;
      entry.referenced = false;  // second chance
      ++hand_;
    }
    return ring_.front();  // everyone referenced: degenerate to FIFO
  }

 private:
  struct Entry {
    std::list<BlockId>::iterator pos;
    bool referenced;
  };
  std::list<BlockId> ring_;
  std::list<BlockId>::iterator hand_ = ring_.end();
  std::unordered_map<BlockId, Entry> entries_;
};

}  // namespace

int main() {
  using namespace mrd;

  const WorkloadRun run = plan_workload(*find_workload("cc"));
  ClusterConfig cluster = main_cluster();
  cluster.cache_bytes_per_node = cache_bytes_per_node_for(run, cluster, 0.5);

  std::cout << "Custom policy demo on " << run.name << "\n\n";
  AsciiTable table({"policy", "JCT (s)", "hit ratio"});

  // Built-ins go through the registry...
  for (const char* builtin : {"lru", "lrc", "mrd"}) {
    RunConfig config;
    config.cluster = cluster;
    config.policy.name = builtin;
    const RunMetrics m = run_plan(run.plan, config);
    table.add_row({std::string(builtin), format_double(m.jct_ms / 1000.0, 2),
                   format_percent(m.hit_ratio(), 1)});
  }

  // ...while a custom policy only needs a PolicyFactory. We drive the
  // simulator pieces directly: a BlockManagerMaster with CLOCK instances,
  // replayed through run_plan's building blocks isn't exposed for arbitrary
  // factories, so we register the factory through make_policy's pieces —
  // here the simplest route is the RunConfig-independent comparison below.
  //
  // (For a one-off experiment you can also add a name to
  // src/core/policy_registry.cpp — it is a ~5 line change.)
  {
    PolicyFactory factory = [](NodeId, NodeId) {
      return std::make_unique<ClockPolicy>();
    };
    BlockManagerMaster master(cluster, factory);
    // Exercise the policy standalone to show the interface contract.
    BlockManager& node0 = master.node(0);
    IoCharge charge;
    for (PartitionIndex p = 0; p < 32; ++p) {
      node0.cache_block(BlockId{1, p * master.num_nodes()},
                        cluster.cache_bytes_per_node / 16, &charge);
    }
    std::cout << "CLOCK standalone: node 0 holds "
              << node0.store().num_blocks() << " blocks after 32 inserts, "
              << node0.stats().evictions << " clock evictions\n\n";
  }

  table.print(std::cout);
  std::cout << "\nSee src/core/policy_registry.cpp to register a policy "
               "name usable from RunConfig and every bench.\n";
  return 0;
}
